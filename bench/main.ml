(** Benchmark harness: regenerates every table and figure of the paper's
    evaluation (printed as paper-style tables from the simulated clock),
    and registers one Bechamel [Test.make] per table/figure measuring the
    wall-clock cost of the simulator itself on that experiment's kernel
    operation.

    Usage: [dune exec bench/main.exe] (paper tables + bechamel)
           [dune exec bench/main.exe -- --fast] (paper tables only)
           [dune exec bench/main.exe -- --json <path>] (also write the
           host ns/op estimates to [path] as a perf-trajectory point:
           [{"tests": {"<name>": {"ns_per_op": N}}, "date": "..."}]) *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Bechamel micro-closures: one per table/figure. Each closure performs *)
(* a small self-contained batch on a persistent stack so it can run     *)
(* repeatedly; what Bechamel measures is the real-time cost of the      *)
(* simulation, complementing the simulated-time tables.                 *)
(* ------------------------------------------------------------------ *)

let append_closure spec =
  let stack = Harness.Fs_config.make spec in
  let fs = stack.Harness.Fs_config.fs in
  let fd = fs.Fsapi.Fs.open_ "/bench-append" Fsapi.Flags.create_rw in
  let buf = Bytes.make 4096 'b' in
  let count = ref 0 in
  fun () ->
    ignore (fs.Fsapi.Fs.write fd ~buf ~boff:0 ~len:4096);
    incr count;
    if !count mod 256 = 0 then begin
      fs.Fsapi.Fs.fsync fd;
      fs.Fsapi.Fs.ftruncate fd 0
    end

let overwrite_closure spec =
  let stack = Harness.Fs_config.make spec in
  let fs = stack.Harness.Fs_config.fs in
  Fsapi.Fs.write_file fs "/bench-ow" (String.make 65536 'o');
  let fd = fs.Fsapi.Fs.open_ "/bench-ow" Fsapi.Flags.rdwr in
  let buf = Bytes.make 4096 'w' in
  let i = ref 0 in
  fun () ->
    ignore (fs.Fsapi.Fs.pwrite fd ~buf ~boff:0 ~len:4096 ~at:(!i mod 16 * 4096));
    incr i

let read_closure spec =
  let stack = Harness.Fs_config.make spec in
  let fs = stack.Harness.Fs_config.fs in
  Fsapi.Fs.write_file fs "/bench-rd" (String.make 65536 'r');
  let fd = fs.Fsapi.Fs.open_ "/bench-rd" Fsapi.Flags.rdonly in
  let buf = Bytes.make 4096 '\000' in
  let i = ref 0 in
  fun () ->
    ignore (fs.Fsapi.Fs.pread fd ~buf ~boff:0 ~len:4096 ~at:(!i mod 16 * 4096));
    incr i

let varmail_closure spec =
  let stack = Harness.Fs_config.make spec in
  let fs = stack.Harness.Fs_config.fs in
  let buf = Bytes.make 4096 'v' in
  let i = ref 0 in
  fun () ->
    let path = Printf.sprintf "/vm-%d" (!i mod 64) in
    incr i;
    let fd = fs.Fsapi.Fs.open_ path Fsapi.Flags.create_rw in
    ignore (fs.Fsapi.Fs.write fd ~buf ~boff:0 ~len:4096);
    fs.Fsapi.Fs.fsync fd;
    fs.Fsapi.Fs.close fd;
    fs.Fsapi.Fs.unlink path

let kv_closure spec =
  let stack = Harness.Fs_config.make spec in
  let lsm = Apps.Lsm.open_ stack.Harness.Fs_config.fs "/bench-lsm" in
  let rng = Workloads.Rng.create 1 in
  fun () ->
    let k = Printf.sprintf "key%06d" (Workloads.Rng.int rng 4096) in
    Apps.Lsm.put lsm k (Workloads.Rng.payload rng 256);
    ignore (Apps.Lsm.get lsm k)

let db_closure spec =
  let stack = Harness.Fs_config.make spec in
  let db = Apps.Waldb.open_ stack.Harness.Fs_config.fs "/bench-db" () in
  let rng = Workloads.Rng.create 2 in
  fun () ->
    Apps.Waldb.transaction db (fun () ->
        let k = Printf.sprintf "%06d" (Workloads.Rng.int rng 4096) in
        Apps.Waldb.put db ~table:"t" k (Workloads.Rng.payload rng 128))

let recovery_closure () =
  fun () ->
    let env, kfs, sys =
      let env = Pmem.Env.create ~capacity:(8 * 1024 * 1024) () in
      let kfs = Kernelfs.Ext4.mkfs ~journal_len:(2 * 1024 * 1024) env in
      (env, kfs, Kernelfs.Syscall.make kfs)
    in
    ignore kfs;
    let cfg =
      {
        Splitfs.Config.strict with
        Splitfs.Config.staging_files = 1;
        staging_size = 512 * 1024;
        oplog_size = 64 * 1024;
      }
    in
    let u = Splitfs.Usplit.mount ~cfg ~sys ~env ~instance:0 () in
    let fs = Splitfs.Usplit.as_fsapi u in
    let fd = fs.Fsapi.Fs.open_ "/f" Fsapi.Flags.create_rw in
    let buf = Bytes.make 64 'x' in
    for _ = 1 to 100 do
      ignore (fs.Fsapi.Fs.write fd ~buf ~boff:0 ~len:64)
    done;
    Pmem.Device.crash env.Pmem.Env.dev;
    ignore (Splitfs.Recovery.recover ~sys ~env ~instance:0)

(* Each entry is a constructor so the test's FS stack is built right
   before its measurement and becomes garbage right after: keeping all
   eleven stacks live at once made the incremental major GC's marking
   work — proportional to the scanned live heap — dominate every
   estimate (3-6x inflation over the same closure measured alone). *)
let bechamel_tests : (unit -> Test.t) list =
  [
    (* Table 1: the 4K append on the two headline systems *)
    (fun () ->
      Test.make ~name:"table1/append-ext4-dax"
        (Staged.stage (append_closure Harness.Fs_config.Ext4_dax)));
    (fun () ->
      Test.make ~name:"table1/append-splitfs-posix"
        (Staged.stage (append_closure Harness.Fs_config.Splitfs_posix)));
    (* Table 2: raw device op *)
    (fun () ->
      Test.make ~name:"table2/device-4k-write"
        (let env = Pmem.Env.create ~capacity:(1024 * 1024) () in
         let buf = Bytes.make 4096 'd' in
         Staged.stage (fun () ->
             Pmem.Device.store_nt env.Pmem.Env.dev ~addr:0 buf ~off:0 ~len:4096)));
    (* Table 6: the varmail create/append/fsync/unlink sequence *)
    (fun () ->
      Test.make ~name:"table6/varmail-splitfs-strict"
        (Staged.stage (varmail_closure Harness.Fs_config.Splitfs_strict)));
    (* Table 7: the LSM KV op mix on SplitFS-strict *)
    (fun () ->
      Test.make ~name:"table7/lsm-splitfs-strict"
        (Staged.stage (kv_closure Harness.Fs_config.Splitfs_strict)));
    (* Figure 3: staged append with periodic fsync (relink path) *)
    (fun () ->
      Test.make ~name:"fig3/append-relink"
        (Staged.stage (append_closure Harness.Fs_config.Splitfs_posix)));
    (* Figure 4: overwrite and read patterns *)
    (fun () ->
      Test.make ~name:"fig4/overwrite-splitfs"
        (Staged.stage (overwrite_closure Harness.Fs_config.Splitfs_posix)));
    (fun () ->
      Test.make ~name:"fig4/read-splitfs"
        (Staged.stage (read_closure Harness.Fs_config.Splitfs_posix)));
    (* Figure 5/6: the embedded database transaction *)
    (fun () ->
      Test.make ~name:"fig5/tpcc-tx-splitfs-sync"
        (Staged.stage (db_closure Harness.Fs_config.Splitfs_sync)));
    (fun () ->
      Test.make ~name:"fig6/kv-nova-strict"
        (Staged.stage (kv_closure Harness.Fs_config.Nova_strict)));
    (* §5.3 recovery *)
    (fun () ->
      Test.make ~name:"recovery/crash-replay"
        (Staged.stage (recovery_closure ())));
  ]

(** Run every bechamel test, print one line per test and return the
    (name, host ns/op) estimates in declaration order. *)
let run_bechamel () =
  let instances = Instance.[ monotonic_clock ] in
  (* long enough for the OLS estimate to converge on closures that mutate
     FS state (growing files, periodic relink batches); 0.5 s gave
     estimates that swung 2-3x between runs *)
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 2.0) ~kde:(Some 100) () in
  Printf.printf "\n== Bechamel: wall-clock cost of the simulator per operation ==\n";
  List.concat_map
    (fun mk ->
      (* reclaim the previous test's stack (and, on the first test, the
         experiment phase's garbage) so marking cost reflects this test *)
      Gc.compact ();
      let test = mk () in
      let results = Benchmark.all cfg instances test in
      let ols =
        Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
          (Instance.monotonic_clock) results
      in
      Hashtbl.fold
        (fun name result acc ->
          match Analyze.OLS.estimates result with
          | Some [ est ] ->
              Printf.printf "%-34s %10.0f ns/op (host)\n" name est;
              (name, est) :: acc
          | _ ->
              Printf.printf "%-34s (no estimate)\n" name;
              acc)
        ols [])
    bechamel_tests

(* ------------------------------------------------------------------ *)
(* JSON perf trajectory: one point per PR, diffable across sessions     *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* schema 2: trajectory files carry a meta block so `splitfs_cli
   bench-diff` can refuse cross-schema comparisons instead of producing a
   misleading table. Bump [schema_version] whenever key names or units
   change meaning. *)
let schema_version = 2
let campaign_seed = 0x51ED

let write_trajectory ?(mode = "full") path estimates =
  let tm = Unix.gmtime (Unix.time ()) in
  let date =
    Printf.sprintf "%04d-%02d-%02d" (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1)
      tm.Unix.tm_mday
  in
  let oc = open_out path in
  output_string oc "{\n  \"meta\": {\n";
  Printf.fprintf oc "    \"schema\": %d,\n" schema_version;
  Printf.fprintf oc "    \"mode\": \"%s\",\n" mode;
  Printf.fprintf oc "    \"seed\": %d,\n" campaign_seed;
  Printf.fprintf oc "    \"jobs\": %d,\n" (Par.resolve_jobs ());
  Printf.fprintf oc "    \"stacks\": [%s]\n"
    (String.concat ", "
       (List.map
          (fun s -> Printf.sprintf "\"%s\"" (Harness.Fs_config.name s))
          Harness.Experiments.scale_specs));
  output_string oc "  },\n  \"tests\": {\n";
  List.iteri
    (fun i (name, est) ->
      Printf.fprintf oc "    \"%s\": {\"ns_per_op\": %.1f}%s\n" (json_escape name)
        est
        (if i = List.length estimates - 1 then "" else ","))
    estimates;
  Printf.fprintf oc "  },\n  \"date\": \"%s\"\n}\n" date;
  close_out oc;
  Printf.printf "\nwrote perf trajectory point to %s\n" path

(* The scaling experiment's trajectory entries carry *simulated* ns/op
   (aggregate makespan over total ops at each client count) — the quantity
   the acceptance test pins — rather than host-clock cost: contention
   results need to stay comparable across machines. *)
let scaling_estimates results =
  List.concat_map
    (fun (spec, rs) ->
      List.map
        (fun (r : Harness.Multiclient.result) ->
          ( Printf.sprintf "scaling/%s-%dc" (Harness.Fs_config.name spec)
              r.Harness.Multiclient.nclients,
            r.Harness.Multiclient.makespan_ns
            /. float_of_int (max 1 r.Harness.Multiclient.total_ops) ))
        rs)
    results

(* The 10k-actor serving-tier sweep: simulated ns/op, tail latency and
   SLO attainment per (stack, actor count), plus the host-side dispatch
   overhead of the event-heap scheduler against the retained min-scan —
   the one host-clock number here, since the heap's win *is* host
   overhead. *)
let scale_estimates results (d : Harness.Experiments.dispatch_result) =
  List.concat_map
    (fun (spec, rs) ->
      List.concat_map
        (fun (r : Harness.Multiclient.scale_result) ->
          let base =
            Printf.sprintf "scale10k/%s-%da" (Harness.Fs_config.name spec)
              r.Harness.Multiclient.sr_nactors
          in
          [
            ( base,
              r.Harness.Multiclient.sr_makespan_ns
              /. float_of_int (max 1 r.Harness.Multiclient.sr_total_ops) );
            (base ^ "/p999", r.Harness.Multiclient.sr_p999_ns);
            (base ^ "/slo", r.Harness.Multiclient.sr_slo_attainment);
          ])
        rs)
    results
  @ [
      ( "scale10k/dispatch/heap_host_ns",
        d.Harness.Experiments.db_heap_ns_per_dispatch );
      ( "scale10k/dispatch/scan_host_ns",
        d.Harness.Experiments.db_scan_ns_per_dispatch );
      ("scale10k/dispatch/speedup", d.Harness.Experiments.db_speedup);
    ]

(* Latency percentiles and the overhead attribution likewise carry
   simulated ns — stable across machines, so the trajectory can watch the
   cost model rather than the host. *)
let latency_estimates rows =
  List.concat_map
    (fun (r : Harness.Experiments.latency_row) ->
      let base =
        Printf.sprintf "lat/%s/%s"
          (Harness.Fs_config.name r.Harness.Experiments.lat_spec)
          r.Harness.Experiments.lat_op
      in
      [
        (base ^ "/p50", r.Harness.Experiments.lat_p50);
        (base ^ "/p90", r.Harness.Experiments.lat_p90);
        (base ^ "/p99", r.Harness.Experiments.lat_p99);
        (base ^ "/p999", r.Harness.Experiments.lat_p999);
      ])
    rows

(* Faultcheck outcome counts per stack: how many injected-fault trials
   were masked / retried / surfaced an honest errno. A shift in these
   counts at a pinned seed means a degradation path changed behaviour —
   exactly what a robustness trajectory should catch. *)
let fault_estimates reports =
  List.concat_map
    (fun (r : Faultcheck.stack_report) ->
      [
        (Printf.sprintf "faults/%s/untriggered" r.Faultcheck.s_stack,
         float_of_int r.Faultcheck.s_untriggered);
        (Printf.sprintf "faults/%s/masked" r.Faultcheck.s_stack,
         float_of_int r.Faultcheck.s_masked);
        (Printf.sprintf "faults/%s/retried" r.Faultcheck.s_stack,
         float_of_int r.Faultcheck.s_retried);
        (Printf.sprintf "faults/%s/errno" r.Faultcheck.s_stack,
         float_of_int r.Faultcheck.s_errno);
      ])
    reports

(* Degraded-mode write latency (staging starved by a sticky allocator
   fault) vs the healthy stack, simulated ns per percentile. *)
let degraded_estimates rows =
  List.concat_map
    (fun (r : Harness.Experiments.degraded_row) ->
      let base =
        Printf.sprintf "faults/degraded-lat/%s/%s"
          (Harness.Fs_config.name r.Harness.Experiments.dg_spec)
          r.Harness.Experiments.dg_variant
      in
      [
        (base ^ "/p50", r.Harness.Experiments.dg_p50);
        (base ^ "/p90", r.Harness.Experiments.dg_p90);
        (base ^ "/p99", r.Harness.Experiments.dg_p99);
      ])
    rows

let profile_estimates rows =
  List.concat_map
    (fun (r : Harness.Experiments.profile_row) ->
      List.filter_map
        (fun (cat, ns) ->
          if ns = 0. then None
          else
            Some
              ( Printf.sprintf "profile/%s/%s"
                  (Harness.Fs_config.name r.Harness.Experiments.pr_spec)
                  (Obs.cat_name cat),
                ns /. float_of_int r.Harness.Experiments.pr_ops ))
        r.Harness.Experiments.pr_breakdown)
    rows

(* Litmus trajectory entries carry the *exhaustive crash-state count*
   per (pattern, stack) — not ns — so a change that silently grows or
   shrinks the enumerated space shows up in the BENCH_PR*.json diff.
   table1/sim carries the simulated append cost per stack: the fences
   physically removed after the minimizer's REDUNDANT proofs (PR 7)
   show there as a drop against earlier PRs. *)
let litmus_estimates runs =
  List.map
    (fun (r : Crashcheck.Litmus.run) ->
      ( Printf.sprintf "litmus/%s/%s" r.Crashcheck.Litmus.r_pattern
          r.Crashcheck.Litmus.r_config,
        float_of_int r.Crashcheck.Litmus.r_states ))
    runs

(* FAMS-vs-WAL: per-commit simulated latency of the mmap-native page
   store on failure-atomic msync against the WAL pager everywhere else,
   plus the simulated crash-to-consistent-reopen time. *)
let fams_estimates rows =
  List.concat_map
    (fun (r : Harness.Experiments.fams_row) ->
      let base =
        Printf.sprintf "fams/%s"
          (Harness.Fs_config.name r.Harness.Experiments.fw_spec)
      in
      [
        (base ^ "/p50", r.Harness.Experiments.fw_p50_ns);
        (base ^ "/p99", r.Harness.Experiments.fw_p99_ns);
        (base ^ "/recovery-ms", r.Harness.Experiments.fw_recovery_ms);
      ])
    rows

let table1_sim_estimates rows =
  List.map
    (fun (r : Harness.Experiments.table1_row) ->
      ( "table1/sim/" ^ r.Harness.Experiments.t1_fs,
        r.Harness.Experiments.t1_append_ns ))
    rows

(* fig4/sim and table6/sim carry simulated ns/op per cell. The Table-1 /
   Fig-4 hot loops contain none of the removed fences (their fences were
   proven REQUIRED and stayed), so those entries double as a
   bit-identity pin; the removal delta lands on the metadata/fsync paths
   that table6/sim records (varmail open/fsync). *)
let fig4_sim_estimates results =
  List.concat_map
    (fun (_, base, challengers) ->
      List.concat_map
        (fun (spec, runs) ->
          List.map
            (fun (p, m) ->
              ( Printf.sprintf "fig4/sim/%s/%s"
                  (Harness.Fs_config.name spec)
                  (Workloads.Iopattern.pattern_name p),
                Harness.Runner.ns_per_op m ))
            runs)
        (base :: challengers))
    results

(* Domain-parallel campaign sweep (§5j): host wall ns per campaign at
   each job count, plus the speedup vs one job. Host-dependent like the
   bechamel entries; the speedups are the comparable numbers. *)
let par_estimates rows =
  let wall campaign jobs =
    let r =
      List.find
        (fun (r : Harness.Experiments.par_row) ->
          r.Harness.Experiments.pb_campaign = campaign
          && r.Harness.Experiments.pb_jobs = jobs)
        rows
    in
    r.Harness.Experiments.pb_wall_ns
  in
  List.concat_map
    (fun (r : Harness.Experiments.par_row) ->
      let c = r.Harness.Experiments.pb_campaign in
      let j = r.Harness.Experiments.pb_jobs in
      let entry =
        (Printf.sprintf "par/%s/walltime-j%d" c j, r.Harness.Experiments.pb_wall_ns)
      in
      if j = 1 then [ entry ]
      else
        [
          entry;
          ( Printf.sprintf "par/%s/speedup-j%d" c j,
            wall c 1 /. r.Harness.Experiments.pb_wall_ns );
        ])
    rows

let table6_sim_estimates rows =
  List.concat_map
    (fun (fs, (l : Workloads.Varmail.latencies)) ->
      List.map
        (fun (op, ns) -> (Printf.sprintf "table6/sim/%s/%s" fs op, ns))
        [
          ("open", l.Workloads.Varmail.open_ns);
          ("close", l.Workloads.Varmail.close_ns);
          ("append", l.Workloads.Varmail.append_ns);
          ("fsync", l.Workloads.Varmail.fsync_ns);
          ("read", l.Workloads.Varmail.read_ns);
          ("unlink", l.Workloads.Varmail.unlink_ns);
        ])
    rows

let () =
  let fast = Array.exists (fun a -> a = "--fast") Sys.argv in
  let json_path =
    let rec find = function
      | "--json" :: path :: _ -> Some path
      | _ :: rest -> find rest
      | [] -> None
    in
    find (Array.to_list Sys.argv)
  in
  let table1 = Harness.Experiments.table1 () in
  ignore (Harness.Experiments.table2 ());
  let table6 = Harness.Experiments.table6 () in
  ignore (Harness.Experiments.fig3 ());
  let fig4 = Harness.Experiments.fig4 () in
  ignore (Harness.Experiments.fig5 ());
  ignore (Harness.Experiments.fig6 ());
  ignore (Harness.Experiments.table7 ());
  ignore (Harness.Experiments.recovery ());
  ignore (Harness.Experiments.resources ());
  ignore (Harness.Experiments.ablations ());
  let scaling = Harness.Experiments.scaling () in
  let profile = Harness.Experiments.profile () in
  let latency = Harness.Experiments.latency () in
  let faultcheck = Harness.Experiments.faultcheck () in
  let degraded = Harness.Experiments.degraded_latency () in
  let fams = Harness.Experiments.fams_vs_wal () in
  (* the minimizer re-explores the corpus once per fence site; skip it
     in --fast smoke runs, keep the corpus itself (it is the crash
     regression gate) *)
  let litmus, _verdicts = Harness.Experiments.litmus ~minimize:(not fast) () in
  (* every entry below is simulated ns (or a deterministic count): cheap
     to produce and exact to compare, so --fast runs now write a
     trajectory point too — the sim-only subset the CI regression gate
     diffs against the last committed full snapshot *)
  let sim_estimates =
    table1_sim_estimates table1 @ fig4_sim_estimates fig4
    @ table6_sim_estimates table6 @ scaling_estimates scaling
    @ profile_estimates profile @ latency_estimates latency
    @ fault_estimates faultcheck @ degraded_estimates degraded
    @ fams_estimates fams @ litmus_estimates litmus
  in
  if fast then
    Option.iter
      (fun path -> write_trajectory ~mode:"fast" path sim_estimates)
      json_path
  else begin
    let scale = Harness.Experiments.scale () in
    let dispatch = Harness.Experiments.dispatch_bench () in
    let par = Harness.Experiments.par_bench () in
    let estimates = run_bechamel () in
    Option.iter
      (fun path ->
        write_trajectory path
          (estimates @ sim_estimates
          @ scale_estimates scale dispatch @ par_estimates par))
      json_path
  end;
  print_endline "\nAll experiments completed."
