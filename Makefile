.PHONY: all build test bench check

all: build

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Full verification: build, unit + property + differential tests, and the
# paper tables as a smoke test of every experiment stack.
check:
	dune build
	dune runtest
	dune exec bench/main.exe -- --fast
