.PHONY: all build test bench bench-json bench-diff crashcheck faultcheck litmus fams profile scale par-bench check

all: build

# Worker domains for the verification campaigns. Every campaign's report
# is identical at every job count (see DESIGN.md §5j); JOBS only buys
# wall-clock. Override with `make check JOBS=8`.
JOBS ?= $(shell nproc 2>/dev/null || echo 1)

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Perf-trajectory point for this PR: host ns/op per experiment kernel
# (bechamel) plus simulated ns/op per scaling configuration, plus the
# domain-parallel campaign wall times (par/*). Carries a meta block
# (schema/seed/jobs/stacks) so bench-diff can refuse cross-schema
# comparisons. The existing simulated-ns entries must be bit-identical
# to BENCH_PR9.json (the fams mode must not perturb the other stacks) —
# enforced by the bench-diff gate below.
bench-json:
	dune exec bench/main.exe -- --json BENCH_PR10.json

# Perf-regression sentinel: regenerate the deterministic (sim-only)
# trajectory subset in fast mode and judge it against the last committed
# snapshot. Sim-ns keys are compared exactly; --subset accepts that a
# fast run carries no host-clock entries; --strict-meta refuses a
# baseline without a meta block (every snapshot since PR 9 carries one).
# Exits non-zero on regression.
bench-diff:
	dune exec bench/main.exe -- --fast --json BENCH_NEW_FAST.json
	dune exec bin/splitfs_cli.exe -- bench-diff BENCH_PR9.json BENCH_NEW_FAST.json --subset --strict-meta

# Scale-out serving tier smoke: the multi-tenant sweep up to N=1000
# actors across all six stacks, plus the scheduler dispatch-overhead
# microbenchmark (exits non-zero if the event heap is not >= 10x faster
# per dispatch than the reference min-scan). The full N=10000 sweep runs
# under bench-json. (~30s)
scale:
	dune exec bin/splitfs_cli.exe -- scale --fast --jobs $(JOBS)

# Observability: the software-overhead attribution table (where every
# simulated ns goes, per stack), latency percentiles per (stack x op),
# a Perfetto-loadable span trace of a 4-client SplitFS run, and the
# virtual-time telemetry export (OpenMetrics text + counter tracks
# merged into a Perfetto trace) of a 1000-actor serving-tier run.
profile:
	dune exec bin/splitfs_cli.exe -- profile
	dune exec bin/splitfs_cli.exe -- latency
	dune exec bin/splitfs_cli.exe -- trace --fs splitfs-posix --clients 4 \
	  --out trace.json
	dune exec bin/splitfs_cli.exe -- timeline --fs splitfs-posix --actors 1000 \
	  --out-metrics timeline.prom --out-trace timeline-trace.json

# Crash-state exploration: sampled partial-persistence crash states per
# mode, each recovered and checked against the reference oracle. Exits
# non-zero on any invariant violation. (~2s sequential, less with JOBS)
crashcheck:
	dune exec bin/splitfs_cli.exe -- crashcheck --jobs $(JOBS)

# Fault-injection campaign: media errors (poisoned lines, worn blocks),
# resource exhaustion (ENOSPC, journal/swap EIO), and scrubber patrols
# injected into every stack x mode, each trial checked against the
# differential fault oracle (masked / retried / correct errno — never
# silent corruption). Exits non-zero on any violation. (~1s)
faultcheck:
	dune exec bin/splitfs_cli.exe -- faultcheck --jobs $(JOBS)

# Litmus corpus: named crash patterns (Ferrite's create-rename,
# two-appends, chrome, replace-via-truncate, plus SplitFS-specific
# WAL-commit and relink-publish) explored EXHAUSTIVELY on every stack x
# mode, then the fence minimizer: every registered fence site elided in
# turn and the corpus re-explored to prove it REQUIRED (shrunk
# counterexample) or REDUNDANT. Exits non-zero on any contract
# violation with all fences in place. (~10s sequential)
litmus:
	dune exec bin/splitfs_cli.exe -- litmus --jobs $(JOBS)

# Failure-atomic msync: the two fams litmus patterns (msync-publish,
# snapshot-cow) exhaustively on every stack, the torn-msync canary (with
# the commit record disabled the corpus MUST flag a violation), the fams
# faultcheck leg (staging starvation answers honest ENOSPC), and the
# FAMS-vs-WAL experiment table. Exits non-zero if a contract is violated
# or the canary fails to catch the injected bug. (~3s)
fams:
	dune exec bin/splitfs_cli.exe -- fams --jobs $(JOBS)

# Campaign wall time at 1/2/4/8 worker domains. On hosts with >= 4
# recommended domains this is also a gate: litmus and minimize must be
# >= 2x faster at 4 jobs than at 1; single-core hosts skip the gate.
par-bench:
	dune exec bin/splitfs_cli.exe -- par-bench

# Full verification: build, unit + property + differential tests, crash
# state exploration, and the paper tables as a smoke test of every
# experiment stack. Campaigns run with $(JOBS) worker domains.
check:
	dune build
	dune runtest
	dune exec bin/splitfs_cli.exe -- crashcheck --jobs $(JOBS)
	dune exec bin/splitfs_cli.exe -- faultcheck --jobs $(JOBS)
	dune exec bin/splitfs_cli.exe -- litmus --jobs $(JOBS)
	dune exec bin/splitfs_cli.exe -- fams --jobs $(JOBS)
	dune exec bin/splitfs_cli.exe -- scale --fast --jobs $(JOBS)
	dune exec bin/splitfs_cli.exe -- par-bench
	$(MAKE) bench-diff
